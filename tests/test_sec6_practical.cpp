// Section 6 practical aspects: oversubscription through the 4-way demux
// queues, thread migration between requests, and deadlock-freedom
// properties of the message-queue sizing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(Oversubscription, FourThreadsPerCoreViaDemuxQueues) {
  // A small 4x2 machine (8 cores) running 1 server + 31 clients: up to 4
  // threads share each core via the 4 hardware demux queues.
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 3);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  const std::uint32_t nclients = 31;
  const std::uint64_t ops_each = 40;
  std::uint32_t done = 0;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (std::uint32_t i = 0; i < nclients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(40));
      }
      if (++done == nclients) mp.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nclients * ops_each);
}

TEST(Oversubscription, HybCombWithSharedCores) {
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 5);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 16);
  const std::uint32_t nthreads = 24;  // 3 per core
  const std::uint64_t ops_each = 40;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(40));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nthreads * ops_each);
}

TEST(Migration, ClientMigratesBetweenRequests) {
  // A client moves to a different core between requests; the server's
  // responses must follow it (identity = current core/queue, Section 6).
  SimExecutor ex(arch::MachineParams::tilegx36(), 7);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  std::vector<rt::Tid> cores_used;
  ex.add_thread([&](SimCtx& ctx) {
    for (int round = 0; round < 8; ++round) {
      cores_used.push_back(ctx.core());
      for (int k = 0; k < 10; ++k) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
      // Hop to the next core (stay off the server's core 0).
      const rt::Tid next = 2 + static_cast<rt::Tid>(round * 4) % 33;
      ctx.migrate(next, /*queue=*/1);
    }
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 8u * 10u);
  // The client actually moved around.
  std::vector<rt::Tid> uniq = cores_used;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_GT(uniq.size(), 4u);
}

TEST(Migration, LatencyDependsOnDistanceToServer) {
  // Same client, near vs far core: request latency should grow with mesh
  // distance (the paper's fairness footnote: cores nearer the server
  // complete slightly more operations).
  SimExecutor ex(arch::MachineParams::tilegx36(), 9);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  sim::Cycle near_lat = 0, far_lat = 0;
  ex.add_thread([&](SimCtx& ctx) {
    ctx.migrate(1, 0);  // adjacent to the server
    {
      const sim::Cycle t0 = ctx.now();
      for (int k = 0; k < 50; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      near_lat = ctx.now() - t0;
    }
    ctx.migrate(35, 0);  // opposite mesh corner
    {
      const sim::Cycle t0 = ctx.now();
      for (int k = 0; k < 50; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      far_lat = ctx.now() - t0;
    }
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(far_lat, near_lat);
}

TEST(DeadlockFreedom, TinyBuffersStillComplete) {
  // With buffers so small that every burst backpressures, the send-then-
  // blocking-receive discipline still guarantees progress (Section 6).
  arch::MachineParams p = arch::MachineParams::tilegx36();
  p.udn_buf_words = 6;  // two 3-word requests
  SimExecutor ex(p, 11);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  const std::uint32_t nclients = 20;
  const std::uint64_t ops_each = 30;
  std::uint32_t done = 0;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (std::uint32_t i = 0; i < nclients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
      if (++done == nclients) mp.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nclients * ops_each);
  EXPECT_GT(ex.machine().udn().counters().sender_blocks, 0u);
}

TEST(DeadlockFreedom, ResponseQueueNeverOverflows) {
  // A client/non-combiner queue holds at most one message (its response),
  // so the servicing thread can never block on a response send.
  SimExecutor ex(arch::MachineParams::tilegx36(), 13);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 64);
  const std::uint32_t nthreads = 30;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 60; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nthreads * 60u);
  // Peak occupancy is bounded by one 3-word request per other thread.
  EXPECT_LE(ex.machine().udn().counters().peak_occupancy,
            3u * (nthreads - 1));
}

TEST(DeadlockHazard, ClientOnServerCoreWithTinyBufferWedges) {
  // The Section 6 hazard the paper leaves to the programmer: if a client
  // shares the SERVER's core (4-way demux) and the shared hardware buffer
  // is sized below one request per client, requests can occupy the entire
  // buffer and the server's response send to its own core blocks forever.
  // This test documents the failure mode: the system makes (almost) no
  // progress within a generous horizon.
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);  // 2 cores
  p.udn_buf_words = 6;  // two 3-word requests fill a core's buffer
  SimExecutor ex(p, 3);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });      // core 0
  for (int i = 0; i < 3; ++i) {  // threads 1..3: cores 1, 0(!), 1
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(2'000'000);
  // A healthy setup would complete ~100k ops in this horizon.
  EXPECT_LT(c.value.load(), 1000u) << "expected the documented wedge";
}

}  // namespace
}  // namespace hmps

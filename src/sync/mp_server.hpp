// MP-SERVER (paper Section 4.1): the client/server (delegation) approach on
// top of hardware message passing.
//
// A dedicated server thread executes all critical sections of one object.
// Clients send a 3-word request over the message network and block on a
// 1-word response. Because the server's receive reads from its local
// hardware buffer and its send is asynchronous, no coherence-related stalls
// remain on the server's critical path (Fig. 2 of the paper).
#pragma once

#include <cstdint>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class MpServer {
 public:
  using Fn = CsFn<Ctx>;

  /// `server_tid`: the thread that will run serve(); `obj`: the concurrent
  /// object whose CSes this instance executes.
  MpServer(Tid server_tid, void* obj) : server_(server_tid), obj_(obj) {}

  Tid server_tid() const { return server_; }
  void* object() const { return obj_; }

  /// Client side: executes `fn(obj, arg)` in mutual exclusion on the server
  /// and returns its result. Must not be called from the server thread.
  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    ctx.send(server_, {ctx.tid(), rt::to_word(fn), arg});
    return ctx.receive1();
  }

  /// Server side: serves requests until a stop request arrives (see
  /// request_stop). Runs forever under open-ended simulation windows.
  void serve(Ctx& ctx) {
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if (m[1] == kStopWord) return;
      Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
      const std::uint64_t ret = fn(ctx, obj_, m[2]);
      ctx.send(static_cast<Tid>(m[0]), {ret});
      ++st.served;
    }
  }

  /// Asks the server loop to exit. Safe to call while requests from other
  /// clients are still queued ahead of the stop message; they are served
  /// first (FIFO hardware queue).
  void request_stop(Ctx& ctx) { ctx.send(server_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) { return stats_[t].s; }

 private:
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  Tid server_;
  void* obj_;
  PaddedStats stats_[64];
};

}  // namespace hmps::sync

// Optional link-level NoC contention model for the message network.
//
// The default UDN timing charges wire latency plus destination-port
// serialization, which captures the paper's effects. This model adds
// per-link occupancy along the XY (dimension-ordered) route — a wormhole
// approximation where each hop's link is reserved for the message's flits —
// so heavy many-to-one traffic also queues inside the mesh, not just at the
// receiver. Enable with MachineParams::model_link_contention.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/fault.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

/// Immutable XY route table of one mesh shape: pair (src, dst) occupies
/// links[offs[src * cores + dst] .. offs[src * cores + dst + 1]).
struct RouteTable {
  std::vector<std::uint32_t> links;  ///< concatenated per-pair link indices
  std::vector<std::uint32_t> offs;
};

/// The process-wide route table for a w x h mesh: built on first request,
/// then shared (read-only) by every NocModel of that shape — including
/// models running concurrently on run-pool workers. Thread-safe.
std::shared_ptr<const RouteTable> shared_route_table(std::uint32_t w,
                                                     std::uint32_t h);

class NocModel {
 public:
  NocModel(const MachineParams& p, const MeshTopology& topo);

  /// Arrival time at `dst` of an `words`-word message injected at `src` at
  /// `inject_time`, after queueing on every link of the XY route. Routes
  /// come from the process-wide shared table of this mesh shape, so the
  /// per-message loop touches only the link reservation array. The
  /// link_wait arithmetic is identical to walking the route coordinate by
  /// coordinate.
  Cycle route(Tid src, Tid dst, Cycle inject_time, std::uint32_t words);

  /// Attaches the machine's fault injector; when active, every hop may take
  /// extra jitter cycles (sim/fault.hpp). Neutral when null or inactive.
  void attach_faults(sim::FaultInjector* f) { faults_ = f; }

  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t hops = 0;
    Cycle link_wait = 0;  ///< total cycles spent queued on busy links
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Optional per-link accumulators behind the telemetry heatmap
  /// (docs/OBSERVABILITY.md): hold (flit occupancy) and wait cycles per
  /// directed link, same indexing as the reservation array. Off by default
  /// — enabling only observes, never changes a delivery time.
  void enable_link_stats() {
    if (link_busy_.empty()) {
      link_busy_.assign(busy_.size(), 0);
      link_wait_.assign(busy_.size(), 0);
    }
  }
  bool link_stats_enabled() const { return !link_busy_.empty(); }
  std::size_t n_links() const { return busy_.size(); }
  /// Per-link hold cycles (message flits occupying the link). Empty unless
  /// enable_link_stats() was called.
  const std::vector<Cycle>& link_busy() const { return link_busy_; }
  /// Per-link queueing cycles (messages waiting for the link). Empty unless
  /// enable_link_stats() was called.
  const std::vector<Cycle>& link_wait() const { return link_wait_; }
  std::uint32_t mesh_w() const { return w_; }
  std::uint32_t mesh_h() const { return h_; }

  /// Extra latency charged on inter-chip links, per link index; empty on a
  /// single-chip machine (arch/params.hpp multi-chip block).
  const std::vector<Cycle>& link_extra() const { return link_extra_; }

  // Directions out of each router (public: the table builder uses them).
  enum Dir : std::uint32_t { kEast, kWest, kNorth, kSouth, kDirs };

 private:
  const MachineParams& p_;
  const MeshTopology& topo_;
  sim::FaultInjector* faults_ = nullptr;
  std::uint32_t w_, h_;
  std::vector<Cycle> busy_;  ///< per-link reservation horizon (per-machine)
  std::shared_ptr<const RouteTable> routes_;  ///< shared, immutable
  Counters counters_;
  std::vector<Cycle> link_busy_;  ///< per-link hold cycles (telemetry)
  std::vector<Cycle> link_wait_;  ///< per-link wait cycles (telemetry)
  std::vector<Cycle> link_extra_; ///< per-link inter-chip surcharge (empty
                                  ///< unless chips() > 1)
};

}  // namespace hmps::arch

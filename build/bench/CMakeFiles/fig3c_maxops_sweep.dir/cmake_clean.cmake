file(REMOVE_RECURSE
  "CMakeFiles/fig3c_maxops_sweep.dir/fig3c_maxops_sweep.cpp.o"
  "CMakeFiles/fig3c_maxops_sweep.dir/fig3c_maxops_sweep.cpp.o.d"
  "fig3c_maxops_sweep"
  "fig3c_maxops_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_maxops_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

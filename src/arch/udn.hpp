// Hardware message-passing model (Tilera User Dynamic Network).
//
// Each core owns a hardware message buffer of `udn_buf_words` 64-bit words,
// demultiplexed into `udn_queues` independent FIFO queues (Section 5.1 of
// the paper). send() is asynchronous: the sender pays only injection cost
// unless the destination buffer is out of space, in which case the message
// backs up into the network and the sender blocks (credit-based model of
// the paper's never-drop guarantee). receive() reads from the local buffer
// and blocks until enough words are present.
//
// send()/receive() must be called from inside scheduler fibers; delivery is
// an ordinary discrete event.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

class UdnModel {
 public:
  UdnModel(const MachineParams& p, const MeshTopology& topo,
           sim::Scheduler& sched);

  /// Sends `n` words to (dst core, dst queue). Blocks the calling fiber on
  /// backpressure; otherwise costs inject + per-word serialization.
  void send(Tid src, Tid dst, std::uint32_t queue, const std::uint64_t* words,
            std::size_t n);

  /// Receives exactly `n` words from the local queue, blocking as needed.
  void receive(Tid dst, std::uint32_t queue, std::uint64_t* out,
               std::size_t n);

  /// True iff the local queue currently holds no words.
  bool queue_empty(Tid core, std::uint32_t queue) const {
    return bufs_[core].queues[queue].empty();
  }

  std::size_t words_pending(Tid core, std::uint32_t queue) const {
    return bufs_[core].queues[queue].size();
  }

  std::uint32_t n_queues() const { return static_cast<std::uint32_t>(nq_); }

  NocModel& noc() { return noc_; }

  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t sender_blocks = 0;  ///< sends that hit backpressure
    std::uint64_t peak_occupancy = 0; ///< max words resident in one buffer
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  struct Waiter {
    sim::Scheduler::FiberId fiber;
    std::size_t need;
  };

  struct Buffer {
    std::vector<std::deque<std::uint64_t>> queues;
    std::size_t reserved = 0;  ///< words in flight or resident (credits)
    Cycle port_busy = 0;       ///< ingress port serialization
    std::vector<std::deque<Waiter>> q_recv_waiters;  ///< blocked receivers
    std::deque<Waiter> send_waiters;  ///< senders blocked on credits
  };

  void try_release_senders(Buffer& b);

  const MachineParams& p_;
  const MeshTopology& topo_;
  NocModel noc_;
  sim::Scheduler& sched_;
  std::size_t nq_;
  std::vector<Buffer> bufs_;
  Counters counters_;
};

}  // namespace hmps::arch

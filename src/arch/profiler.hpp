// Coherence hot-line profiler: attributes RMRs, atomics and queueing to
// individual cache lines so you can see *which* shared variable a
// synchronization algorithm is bottlenecked on (the tool you wish you had
// on the real TILE-Gx, where the paper notes "there are no event counters
// that would provide more fine-grained information on the source of
// stalls").
//
// Enable via Machine::coherence().attach_profiler(); label interesting
// addresses with label() and print top_lines() afterwards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace hmps::arch {

class CoherenceProfiler {
 public:
  struct LineStats {
    std::uint64_t line = 0;
    std::string label;
    std::uint64_t hits = 0;
    std::uint64_t rmr_reads = 0;
    std::uint64_t rmr_writes = 0;
    std::uint64_t atomics = 0;
    sim::Cycle latency_sum = 0;  ///< total cycles charged on this line

    std::uint64_t traffic() const { return rmr_reads + rmr_writes + atomics; }
  };

  /// Associates a human-readable name with the line holding `addr`. The
  /// divisor is the machine's configured line size (set when the profiler
  /// is attached via CoherenceModel::attach_profiler); a hardcoded 64 here
  /// used to mislabel lines on machines configured with a different size.
  void label(const void* addr, std::string name) {
    labels_[reinterpret_cast<std::uint64_t>(addr) / line_bytes_] =
        std::move(name);
  }

  /// Line size used by label() to map addresses to lines. attach_profiler
  /// keeps this equal to MachineParams::line_bytes.
  void set_line_bytes(std::uint32_t bytes) {
    if (bytes) line_bytes_ = bytes;
  }
  std::uint32_t line_bytes() const { return line_bytes_; }

  // Recording hooks (called by CoherenceModel when attached).
  void on_hit(std::uint64_t line) { stats_[line].hits++; }
  void on_read(std::uint64_t line, sim::Cycle lat) {
    auto& s = stats_[line];
    ++s.rmr_reads;
    s.latency_sum += lat;
  }
  void on_write(std::uint64_t line, sim::Cycle lat) {
    auto& s = stats_[line];
    ++s.rmr_writes;
    s.latency_sum += lat;
  }
  void on_atomic(std::uint64_t line, sim::Cycle lat) {
    auto& s = stats_[line];
    ++s.atomics;
    s.latency_sum += lat;
  }

  /// The `n` lines with the most remote traffic, descending.
  std::vector<LineStats> top_lines(std::size_t n) const {
    std::vector<LineStats> v;
    v.reserve(stats_.size());
    for (const auto& [line, s] : stats_) {
      LineStats out = s;
      out.line = line;
      auto it = labels_.find(line);
      if (it != labels_.end()) out.label = it->second;
      v.push_back(std::move(out));
    }
    std::sort(v.begin(), v.end(), [](const LineStats& a, const LineStats& b) {
      return a.traffic() > b.traffic();
    });
    if (v.size() > n) v.resize(n);
    return v;
  }

  void reset() { stats_.clear(); }

 private:
  std::uint32_t line_bytes_ = 64;
  std::unordered_map<std::uint64_t, LineStats> stats_;
  std::unordered_map<std::uint64_t, std::string> labels_;
};

}  // namespace hmps::arch

// Discrete-event scheduler driving a set of fibers on simulated time.
//
// The scheduler owns the global clock. Fibers advance time by calling
// wait_until()/suspend() from inside their bodies; external machine models
// (NoC, message buffers, ...) schedule plain callbacks with at().
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/perturb.hpp"
#include "sim/types.hpp"

namespace hmps::sim {

class Scheduler {
 public:
  using FiberId = std::uint32_t;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates a fiber and schedules its first resume at `start` (default:
  /// current time). Returns its id.
  FiberId spawn(std::function<void()> fn, Cycle start = 0,
                std::size_t stack_bytes = Fiber::kDefaultStack);

  /// Runs events until the queue is empty, `horizon` is passed, or stop()
  /// is called. Returns the simulated time reached.
  Cycle run(Cycle horizon = kCycleMax);

  /// Requests run() to return after the current event completes. Callable
  /// from inside fibers or callbacks.
  void stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  Cycle now() const { return now_; }

  /// Schedules an arbitrary callback at absolute time t (>= now). Small
  /// callables (<= EventFn::kInlineBytes of captures) are stored inline in
  /// the event record — no heap allocation.
  template <class F>
  void at(Cycle t, F&& cb) {
    queue_.schedule(t < now_ ? now_ : t, std::forward<F>(cb));
  }

  /// Engine self-counters (events scheduled/executed, allocation escapes).
  const EngineCounters& engine_counters() const { return queue_.counters(); }

  /// Pre-sizes the event pool, wheel buckets, and overflow heap (see
  /// EventQueue::reserve).
  void reserve_events(std::size_t n, std::size_t per_bucket = 0) {
    queue_.reserve(n, per_bucket);
  }

  /// Enables/disables the wait_until() fast path (on by default). With it
  /// off every wait schedules a resume and round-trips through the event
  /// queue — the reference serial order. Tests assert golden-trace equality
  /// between the two modes to pin the fast path's claim that nothing
  /// observable changes (tests/test_sim_engine.cpp); everything else should
  /// leave it on.
  void set_fast_forward_enabled(bool on) { fast_forward_enabled_ = on; }
  bool fast_forward_enabled() const { return fast_forward_enabled_; }

  /// Installs (or removes, with nullptr) a schedule perturber. Every fiber
  /// resume scheduled afterwards is offered to it; nothing else in the
  /// engine changes, so a null perturber keeps event order byte-identical
  /// to a build without the hook.
  void set_perturber(Perturber* p) { perturber_ = p; }
  Perturber* perturber() const { return perturber_; }

  // ---- Fiber-side API (must be called from inside a running fiber) ----

  /// Blocks the current fiber until absolute time t.
  void wait_until(Cycle t);

  /// Blocks the current fiber for `d` cycles.
  void wait_for(Cycle d) { wait_until(now_ + d); }

  /// Blocks the current fiber indefinitely; resume via wake().
  void suspend();

  /// Schedules fiber `id` to resume at time t (>= now). Only valid for
  /// fibers blocked via suspend().
  void wake(FiberId id, Cycle t);
  void wake_now(FiberId id) { wake(id, now_); }

  /// Id of the fiber currently executing. Only valid inside a fiber.
  FiberId current() const {
    assert(current_ != kNoFiber);
    return current_;
  }
  bool in_fiber() const { return current_ != kNoFiber; }

  bool fiber_finished(FiberId id) const { return fibers_[id]->finished(); }
  std::size_t fiber_count() const { return fibers_.size(); }

  static constexpr FiberId kNoFiber = ~FiberId{0};

 private:
  void schedule_resume(FiberId id, Cycle t);     // applies the perturber
  void schedule_resume_at(FiberId id, Cycle t);  // exact time, no perturb

  /// Parks fiber `f` (the one currently running). If the next event due is
  /// another fiber's resume, switches straight into it — one context switch
  /// instead of the yield-to-scheduler + resume pair — repeating the run
  /// loop's skip of finished fibers; otherwise yields to the run loop.
  void park_and_dispatch(Fiber& f);

  EventQueue queue_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  Cycle now_ = 0;
  Cycle horizon_ = kCycleMax;  ///< run() window; bounds the wait fast path
  FiberId current_ = kNoFiber;
  bool stop_requested_ = false;
  bool fast_forward_enabled_ = true;
  Perturber* perturber_ = nullptr;
};

}  // namespace hmps::sim

// Quickstart: make any sequential object concurrent with HYBCOMB on the
// simulated hybrid manycore.
//
//   $ ./examples/quickstart
//
// The walkthrough:
//   1. build a machine (TILE-Gx preset) and an executor;
//   2. define a sequential object and its critical sections as plain
//      functions over the execution context;
//   3. wrap it in a universal construction (HybComb here — no dedicated
//      server core needed);
//   4. run threads against it and read the results deterministically.
#include <cstdio>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/hybcomb.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

// A sequential object: a bank account with deposit/balance critical
// sections. CS bodies are ordinary functions; `ctx` charges the modeled
// memory costs, `obj` is the object bound to the construction, `arg`/return
// are single 64-bit words (the paper's 3-word request format).
struct Account {
  rt::Word balance{0};
  rt::Word deposits{0};
};

std::uint64_t deposit(SimCtx& ctx, void* obj, std::uint64_t amount) {
  auto* a = static_cast<Account*>(obj);
  const std::uint64_t b = ctx.load(&a->balance);
  ctx.store(&a->balance, b + amount);
  ctx.store(&a->deposits, ctx.load(&a->deposits) + 1);
  return b + amount;
}

std::uint64_t balance(SimCtx& ctx, void* obj, std::uint64_t) {
  return ctx.load(&static_cast<Account*>(obj)->balance);
}

}  // namespace

int main() {
  // 1. A 36-core TILE-Gx-like machine; seed fixes the whole run.
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), /*seed=*/2024);

  // 2-3. The object and its universal construction.
  Account account;
  sync::HybComb<SimCtx> uc(&account, /*max_ops=*/200);

  // 4. Sixteen application threads, each depositing 1000 times.
  constexpr int kThreads = 16, kDeposits = 1000;
  for (int i = 0; i < kThreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < kDeposits; ++k) {
        uc.apply(ctx, deposit, /*amount=*/1);
        ctx.compute(ctx.rand_below(100));  // local work between CSes
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  // Read results through a fresh context-free view (simulation is over).
  const std::uint64_t final_balance = account.balance.load();
  std::printf("final balance: %llu (expected %d)\n",
              static_cast<unsigned long long>(final_balance),
              kThreads * kDeposits);
  std::printf("simulated cycles: %llu\n",
              static_cast<unsigned long long>(ex.sched().now()));

  std::uint64_t tenures = 0, served = 0;
  for (std::uint32_t t = 0; t < 64; ++t) {
    tenures += uc.stats(t).tenures;
    served += uc.stats(t).served;
  }
  std::printf("combining rounds: %llu, ops combined: %llu (%.1f per round)\n",
              static_cast<unsigned long long>(tenures),
              static_cast<unsigned long long>(served),
              tenures ? static_cast<double>(served) / tenures : 0.0);
  (void)balance;  // the read CS, shown for the API shape
  return final_balance == kThreads * kDeposits ? 0 : 1;
}

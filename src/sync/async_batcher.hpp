// AsyncBatcher: client-side request coalescing over the async ticket API
// (docs/MODEL.md §9).
//
// Buffers up to `depth` operations per thread, then issues them as one
// train of back-to-back apply_async() sends before reaping the tickets.
// With a synchronous apply() a client pays a full request/response round
// trip per op; a train of depth d overlaps d requests in the server's
// hardware queue, so the per-op cost tends toward the server's service
// time — the same pipelining argument the paper makes for the server's
// asynchronous response send (Section 4.1), applied to the client side.
//
// Works with any construction exposing the ticket API: MpServer / HybComb
// (Op = CsFn<Ctx>), MpServerHub (Op = opcode), ShmServer. One batcher
// serves one (thread, server) pair; a thread must not interleave trains on
// two constructions (the reply stash is shared per context, MODEL.md §9).
#pragma once

#include <cstdint>

#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx, class Server, class Op = typename Server::Fn>
class AsyncBatcher {
 public:
  /// Train depth cap: 16 three-word requests (48 words) fit comfortably in
  /// every UDN buffer configuration the harness generates, so a full train
  /// can never wedge an unguarded server on its own.
  static constexpr std::uint32_t kMaxDepth = 16;

  AsyncBatcher(Server& srv, std::uint32_t depth)
      : srv_(srv),
        depth_(depth < 1 ? 1 : (depth > kMaxDepth ? kMaxDepth : depth)) {}

  std::uint32_t depth() const { return depth_; }
  std::uint32_t buffered() const { return n_; }

  /// Buffers one operation; when the train reaches the configured depth it
  /// is issued and reaped in place. Returns the number of operations
  /// completed by this call: 0 while buffering, the train length when a
  /// train completes. Depth 1 degenerates to wait(apply_async(...)).
  std::uint64_t add(Ctx& ctx, Op op, std::uint64_t arg) {
    ops_[n_] = op;
    args_[n_] = arg;
    ++n_;
    if (n_ < depth_) return 0;
    return round(ctx, /*flush=*/false);
  }

  /// Issues and reaps whatever is buffered (a possibly short train);
  /// returns the number of operations completed. Call before reading
  /// workload state that buffered operations must have reached.
  std::uint64_t drain(Ctx& ctx) { return round(ctx, /*flush=*/false); }

  /// Explicit partial-train flush for session teardown and open-loop lulls
  /// (docs/SERVICE.md): without it a partially filled batch strands its
  /// buffered operations until the next arrival tops the train up — which
  /// in an open-loop lull may be arbitrarily far away, so the queued ops'
  /// sojourn time grows without bound. Unlike drain(), every flushed op is
  /// counted in SyncStats::async_batched (a short train is still a train:
  /// the ops completed through the batching path, and the accounting must
  /// not lose them just because the train was cut short).
  std::uint64_t flush(Ctx& ctx) { return round(ctx, /*flush=*/true); }

  /// CS result of the most recently completed operation (the last op of
  /// the last train).
  std::uint64_t last_result() const { return last_; }

  /// Completion stamp of the last train's final ticket (docs/SERVICE.md).
  Cycle last_completed() const { return last_completed_; }

 private:
  std::uint64_t round(Ctx& ctx, bool flush) {
    const std::uint32_t n = n_;
    if (n == 0) return 0;
    n_ = 0;
    Ticket t[kMaxDepth];
    for (std::uint32_t i = 0; i < n; ++i) {
      t[i] = srv_.apply_async(ctx, ops_[i], args_[i]);
    }
    if (flush || n >= 2) srv_.stats(ctx.tid()).async_batched += n;
    for (std::uint32_t i = 0; i < n; ++i) {
      last_ = srv_.wait(ctx, t[i]);
    }
    last_completed_ = t[n - 1].completed;
    return n;
  }

  Server& srv_;
  std::uint32_t depth_;
  std::uint32_t n_ = 0;
  Op ops_[kMaxDepth] = {};
  std::uint64_t args_[kMaxDepth] = {};
  std::uint64_t last_ = 0;
  Cycle last_completed_ = 0;
};

}  // namespace hmps::sync

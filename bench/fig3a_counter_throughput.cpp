// Reproduces Fig. 3a: throughput of a concurrent counter implemented with
// mp-server, HybComb, shm-server and CC-Synch, as a function of the number
// of application threads.
//
// Expected shape (paper, Section 5.3): MP-SERVER fastest at every
// concurrency level, peaking ~4.3x above SHM-SERVER; HYBCOMB second,
// ~2.5x above CC-SYNCH at high concurrency; CC-SYNCH and SHM-SERVER
// closely matched.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig3a_counter_throughput", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30, 32,
                                             34, 35}
                : std::vector<std::uint32_t>{1, 5, 10, 15, 20, 25, 30, 35};
  if (args.threads) threads = {args.threads};

  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch};

  harness::Table table({"threads", "mp-server", "HybComb", "shm-server",
                        "CC-Synch"});
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    std::vector<std::string> row{std::to_string(t)};
    for (Approach a : order) {
      cfg.obs = art.next_run(std::string(harness::approach_name(a)) + "/t" +
                             std::to_string(t));
      const auto r = harness::run_counter(cfg, a);
      row.push_back(harness::fmt(r.mops));
    }
    table.add_row(row);
    std::fprintf(stderr, "[fig3a] threads=%u done\n", t);
  }
  table.print("Fig. 3a: counter throughput (Mops/s) vs application threads");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

// Async delegation with client-side batching (docs/MODEL.md §9): counter
// and MS-queue throughput as a function of the request-train depth.
//
// Depth 1 is the classic synchronous apply() — one full request/response
// round trip per operation. Depth d >= 2 issues d tagged apply_async()
// requests back-to-back before reaping the tickets, so the round-trip
// latency is paid once per train instead of once per op and the server
// pipeline stays fed. Below server saturation the speedup approaches the
// ratio of round-trip time to service time; expect MP-SERVER to clear
// 1.5x its synchronous throughput by depth 4.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;
using harness::QueueImpl;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig_async_batching", argc, argv);

  // Sub-saturation client count: a single zero-think client is fully
  // round-trip bound, which is exactly the gap batching closes. Two or
  // more zero-think clients already saturate the MP-SERVER core (its
  // service time is below half the round trip), and at saturation the
  // depth sweep flattens at the server's line rate — visible by passing
  // --threads.
  const std::uint32_t nthreads = args.threads ? args.threads : 1;
  const std::vector<std::uint32_t> depths{1, 2, 4, 8, 16};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t d : depths) {
    harness::RunCfg cfg;
    cfg.app_threads = nthreads;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    cfg.telemetry_window = args.telemetry_window;
    cfg.machine.model_link_contention |= args.noc;
    // No think time: the measurement isolates the round-trip pipelining
    // (think cycles are an additive constant on both sides of the
    // comparison; Fig. 3a's think-time sweep keeps them).
    cfg.think_iters_max = 0;
    // Depth 1 runs the untouched synchronous path as the baseline.
    cfg.async_batch = d >= 2 ? d : 0;

    const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                              Approach::kShmServer};
    for (Approach a : order) {
      pool.submit(std::string(harness::approach_name(a)) + "/d" +
                      std::to_string(d),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_counter(c, a);
                    std::fprintf(stderr, "[fig_async_batching] %s done\n",
                                 obs.label);
                    return r;
                  });
    }
    pool.submit("mp-server-1/d" + std::to_string(d),
                [cfg](const harness::RunObs& obs) {
                  harness::RunCfg c = cfg;
                  c.obs = obs;
                  const auto r = harness::run_queue(c, QueueImpl::kMp1);
                  std::fprintf(stderr, "[fig_async_batching] %s done\n",
                               obs.label);
                  return r;
                });
  }
  const auto& results = pool.drain();

  harness::Table table({"batch", "mp-server", "HybComb", "shm-server",
                        "mp-server-1 (queue)"});
  double mp_sync = 0;
  double mp_d4 = 0;
  std::size_t idx = 0;
  for (std::uint32_t d : depths) {
    std::vector<std::string> row{d >= 2 ? std::to_string(d) : "1 (sync)"};
    for (std::size_t a = 0; a < 4; ++a) {
      const auto& r = results[idx++];
      row.push_back(harness::fmt(r.mops));
      if (a == 0) {
        if (d == 1) mp_sync = r.mops;
        if (d == 4) mp_d4 = r.mops;
      }
    }
    table.add_row(row);
  }
  table.print("Async batching: counter / MS-queue throughput (Mops/s, " +
              std::to_string(nthreads) + " clients) vs train depth");
  if (mp_sync > 0) {
    std::printf("mp-server depth-4 speedup over sync: %.2fx\n",
                mp_d4 / mp_sync);
  }
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

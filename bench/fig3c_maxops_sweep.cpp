// Reproduces Fig. 3c: maximum achievable counter throughput as a function
// of the allowed combining rate (MAX_OPS), at full concurrency.
//
// Expected shape: CC-SYNCH gains little beyond moderate MAX_OPS values,
// while HYBCOMB keeps improving toward very large MAX_OPS (combining is so
// fast that combiner switching stays visible), approaching MP-SERVER's
// throughput. MP-SERVER/SHM-SERVER are flat references (no combining).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig3c_maxops_sweep", argc, argv);
  const std::uint32_t nthreads = args.threads ? args.threads : 35;

  std::vector<std::uint64_t> maxops =
      args.full ? std::vector<std::uint64_t>{1, 2, 5, 10, 20, 50, 100, 200,
                                             500, 1000, 2000, 5000}
                : std::vector<std::uint64_t>{1, 10, 50, 200, 1000, 5000};

  harness::RunCfg base;
  base.app_threads = nthreads;
  base.seed = args.seed;
  if (args.window) base.window = args.window;
  if (args.reps) base.reps = args.reps;

  harness::RunPool pool(art, args.jobs);
  auto submit = [&](std::string label, harness::RunCfg cfg, Approach a) {
    pool.submit(std::move(label), [cfg, a](const harness::RunObs& obs) {
      harness::RunCfg c = cfg;
      c.obs = obs;
      const auto r = harness::run_counter(c, a);
      std::fprintf(stderr, "[fig3c] %s done\n", obs.label);
      return r;
    });
  };
  submit("mp-server/ref", base, Approach::kMpServer);
  submit("shm-server/ref", base, Approach::kShmServer);
  for (std::uint64_t m : maxops) {
    harness::RunCfg cfg = base;
    cfg.max_ops = m;
    submit("HybComb/max_ops" + std::to_string(m), cfg, Approach::kHybComb);
    submit("CC-Synch/max_ops" + std::to_string(m), cfg, Approach::kCcSynch);
  }
  const auto& results = pool.drain();
  const double mp_ref = results[0].mops;
  const double shm_ref = results[1].mops;

  harness::Table table({"max_ops", "HybComb", "CC-Synch", "mp-server(ref)",
                        "shm-server(ref)"});
  std::size_t idx = 2;
  for (std::uint64_t m : maxops) {
    const double hyb = results[idx++].mops;
    const double cc = results[idx++].mops;
    table.add_row({std::to_string(m), harness::fmt(hyb), harness::fmt(cc),
                   harness::fmt(mp_ref), harness::fmt(shm_ref)});
  }
  table.print("Fig. 3c: peak throughput (Mops/s) vs MAX_OPS, " +
              std::to_string(nthreads) + " threads");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

// Correctness of the four universal constructions (MP-SERVER, SHM-SERVER,
// CC-SYNCH, HYBCOMB) and the classic locks on the deterministic simulator:
// mutual exclusion, completeness (no lost operations), return values, and
// determinism across runs. Parameterized over thread counts and seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/locks.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"
#include "sync/universal.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

// A CS body that checks mutual exclusion: it flags entry, computes for a
// few cycles (giving other fibers a chance to run if mutual exclusion were
// broken), and verifies no concurrent entry happened.
struct MutexProbe {
  ds::SeqCounter counter;
  int inside = 0;
  int max_inside = 0;
};

std::uint64_t probe_cs(SimCtx& ctx, void* obj, std::uint64_t /*arg*/) {
  auto* p = static_cast<MutexProbe*>(obj);
  ++p->inside;
  if (p->inside > p->max_inside) p->max_inside = p->inside;
  const std::uint64_t v = ctx.load(&p->counter.value);
  ctx.compute(7);
  ctx.store(&p->counter.value, v + 1);
  --p->inside;
  return v;
}

struct Result {
  std::uint64_t final_count = 0;
  std::uint64_t total_ops = 0;
  int max_inside = 0;
  bool all_returns_unique = true;
};

// Runs `nthreads` application threads doing `ops_each` probe CSes through
// construction `UC`, with server thread wiring where needed.
enum class Kind { kMpServer, kShmServer, kCcSynch, kHybComb, kMcs, kTicket,
                  kTas, kTtas, kClh };

Result run_sim(Kind kind, std::uint32_t nthreads, std::uint64_t ops_each,
               std::uint64_t seed, std::uint64_t max_ops = 16) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  MutexProbe probe;
  std::vector<std::vector<std::uint64_t>> returns(nthreads);

  sync::MpServer<SimCtx> mp(0, &probe);
  sync::ShmServer<SimCtx> shm(0, &probe);
  sync::CcSynch<SimCtx> cc(&probe, static_cast<std::uint32_t>(max_ops));
  sync::HybComb<SimCtx> hyb(&probe, max_ops);
  sync::LockUc<SimCtx, sync::McsLock<SimCtx>> mcs(&probe);
  sync::LockUc<SimCtx, sync::TicketLock<SimCtx>> ticket(&probe);
  sync::LockUc<SimCtx, sync::TasLock<SimCtx>> tas(&probe);
  sync::LockUc<SimCtx, sync::TtasLock<SimCtx>> ttas(&probe);
  sync::LockUc<SimCtx, sync::ClhLock<SimCtx>> clh(&probe);

  const bool has_server = (kind == Kind::kMpServer || kind == Kind::kShmServer);
  std::uint32_t done = 0;
  const std::uint32_t nclients = nthreads;

  auto apply_one = [&](SimCtx& ctx) -> std::uint64_t {
    switch (kind) {
      case Kind::kMpServer: return mp.apply(ctx, probe_cs, 0);
      case Kind::kShmServer: return shm.apply(ctx, probe_cs, 0);
      case Kind::kCcSynch: return cc.apply(ctx, probe_cs, 0);
      case Kind::kHybComb: return hyb.apply(ctx, probe_cs, 0);
      case Kind::kMcs: return mcs.apply(ctx, probe_cs, 0);
      case Kind::kTicket: return ticket.apply(ctx, probe_cs, 0);
      case Kind::kTas: return tas.apply(ctx, probe_cs, 0);
      case Kind::kTtas: return ttas.apply(ctx, probe_cs, 0);
      case Kind::kClh: return clh.apply(ctx, probe_cs, 0);
    }
    return 0;
  };

  if (has_server) {
    // Thread 0 is the server; clients are threads 1..nclients.
    SimExecutor* exp = &ex;
    ex.add_thread([&, exp](SimCtx& ctx) {
      if (kind == Kind::kMpServer) {
        mp.serve(ctx);
      } else {
        shm.serve(ctx);
      }
      (void)exp;
    });
  }
  for (std::uint32_t i = 0; i < nclients; ++i) {
    const std::uint32_t slot = i;
    ex.add_thread([&, slot](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        returns[slot].push_back(apply_one(ctx));
        ctx.compute(ctx.rand_below(20));
      }
      ++done;
      if (done == nclients && has_server) {
        if (kind == Kind::kMpServer) {
          mp.request_stop(ctx);
        } else {
          shm.request_stop(ctx);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  Result r;
  r.final_count = probe.counter.value.load();
  r.max_inside = probe.max_inside;
  std::vector<std::uint64_t> all;
  for (auto& v : returns) {
    r.total_ops += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    if (all[i] == all[i + 1]) r.all_returns_unique = false;
  }
  return r;
}

class UcCorrectness
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(UcCorrectness, MutualExclusionAndCompleteness) {
  const auto [kind, nthreads, seed] = GetParam();
  const std::uint64_t ops_each = 60;
  const Result r = run_sim(kind, nthreads, ops_each, seed);
  EXPECT_EQ(r.total_ops, static_cast<std::uint64_t>(nthreads) * ops_each);
  EXPECT_EQ(r.final_count, r.total_ops) << "lost or duplicated increments";
  EXPECT_EQ(r.max_inside, 1) << "mutual exclusion violated";
  // The CS returns the pre-increment value: with mutual exclusion each op
  // must observe a distinct value.
  EXPECT_TRUE(r.all_returns_unique);
}

std::string UcCaseName(
    const ::testing::TestParamInfo<std::tuple<Kind, std::uint32_t,
                                              std::uint64_t>>& info) {
  static const char* names[] = {"MpServer", "ShmServer", "CcSynch",
                                "HybComb", "Mcs", "Ticket", "Tas",
                                "Ttas", "Clh"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsThreadsSeeds, UcCorrectness,
    ::testing::Combine(
        ::testing::Values(Kind::kMpServer, Kind::kShmServer, Kind::kCcSynch,
                          Kind::kHybComb, Kind::kMcs, Kind::kTicket,
                          Kind::kTas, Kind::kTtas, Kind::kClh),
        ::testing::Values(1u, 2u, 7u, 16u, 35u),
        ::testing::Values(1u, 42u)),
    UcCaseName);

TEST(UcDeterminism, SameSeedSameOutcome) {
  for (Kind k : {Kind::kHybComb, Kind::kCcSynch, Kind::kMpServer}) {
    const Result a = run_sim(k, 8, 40, 99);
    const Result b = run_sim(k, 8, 40, 99);
    EXPECT_EQ(a.final_count, b.final_count);
    EXPECT_EQ(a.total_ops, b.total_ops);
  }
}

TEST(HybCombBehavior, SmallMaxOpsStillCorrect) {
  for (std::uint64_t max_ops : {1u, 2u, 3u}) {
    const Result r = run_sim(Kind::kHybComb, 12, 50, 7, max_ops);
    EXPECT_EQ(r.final_count, 12u * 50u) << "MAX_OPS=" << max_ops;
    EXPECT_EQ(r.max_inside, 1);
  }
}

TEST(HybCombBehavior, LargeMaxOpsStillCorrect) {
  const Result r = run_sim(Kind::kHybComb, 20, 50, 5, 5000);
  EXPECT_EQ(r.final_count, 20u * 50u);
}

TEST(CcSynchBehavior, SmallMaxOpsStillCorrect) {
  for (std::uint64_t max_ops : {1u, 2u}) {
    const Result r = run_sim(Kind::kCcSynch, 12, 50, 7, max_ops);
    EXPECT_EQ(r.final_count, 12u * 50u);
    EXPECT_EQ(r.max_inside, 1);
  }
}

TEST(SimCtxAccounting, LoadsChargeTime) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::SeqCounter c;
  sim::Cycle spent = 0;
  ex.add_thread([&](SimCtx& ctx) {
    const sim::Cycle t0 = ctx.now();
    for (int i = 0; i < 10; ++i) (void)ctx.load(&c.value);
    spent = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  // 1 miss + 9 hits, plus issue costs.
  const auto& p = arch::MachineParams::tilegx36();
  EXPECT_GT(spent, 9 * (p.issue_cost + p.l_hit));
  EXPECT_LT(spent, 200u);
}

TEST(SimCtxAccounting, StallAttributedToCore) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::SeqCounter c;
  ex.add_thread([&](SimCtx& ctx) {
    ctx.store(&c.value, std::uint64_t{1});
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(100);                 // let thread 0 own the line
    (void)ctx.load(&c.value);         // remote dirty fetch -> stall
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(ex.machine().core(1).stall, 10u);
}

TEST(SimCtxAccounting, ComputeCountsBusy) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ex.add_thread([&](SimCtx& ctx) { ctx.compute(123); });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(ex.machine().core(0).busy, 123u);
  EXPECT_EQ(ex.machine().core(0).stall, 0u);
}

}  // namespace
}  // namespace hmps

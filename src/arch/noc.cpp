#include "arch/noc.hpp"

namespace hmps::arch {

NocModel::NocModel(const MachineParams& p, const MeshTopology& topo)
    : p_(p), topo_(topo), w_(p.mesh_w), h_(p.mesh_h),
      busy_(static_cast<std::size_t>(w_) * h_ * kDirs, 0) {}

Cycle NocModel::route(Tid src, Tid dst, Cycle inject_time,
                      std::uint32_t words) {
  ++counters_.messages;
  Coord cur = topo_.coord(src);
  const Coord end = topo_.coord(dst);
  Cycle t = inject_time + p_.router;
  const Cycle hold = p_.udn_per_word_wire * static_cast<Cycle>(words);

  auto hop = [&](Dir d, std::int32_t dx, std::int32_t dy) {
    const std::size_t li = link_index(static_cast<std::uint32_t>(cur.x),
                                      static_cast<std::uint32_t>(cur.y), d);
    Cycle& b = busy_[li];
    const Cycle start = b > t ? b : t;
    counters_.link_wait += start - t;
    // The link carries the message's flits back to back.
    b = start + hold;
    t = start + p_.hop;
    cur.x += dx;
    cur.y += dy;
    ++counters_.hops;
  };

  // Dimension-ordered: X first, then Y (TILE-Gx UDN routing).
  while (cur.x != end.x) {
    if (cur.x < end.x) {
      hop(kEast, 1, 0);
    } else {
      hop(kWest, -1, 0);
    }
  }
  while (cur.y != end.y) {
    if (cur.y < end.y) {
      hop(kSouth, 0, 1);
    } else {
      hop(kNorth, 0, -1);
    }
  }
  return t;
}

}  // namespace hmps::arch

// Schedule-perturbation hook for the discrete-event engine.
//
// The simulator is deterministic: one seed produces exactly one interleaving
// of the fibers. That is ideal for reproducibility and terrible for bug
// hunting — a synchronization bug that needs a particular adversarial
// interleaving may never occur in the schedules the timing model happens to
// produce. A Perturber gives a controller two levers to steer the schedule
// without touching any model state:
//
//  * resume_delay(): consulted every time a fiber resume is scheduled (the
//    engine's elementary scheduling decision). Returning a positive delta
//    postpones that fiber, which is indistinguishable from the thread
//    being descheduled by an OS — exactly the freedom a real machine has.
//  * point_delay(): consulted at the *named* yield points the sync layer
//    exposes at its span boundaries (sync::explore_point), for targeted
//    preemption inside known-critical windows.
//
// With no perturber installed (the default) both hooks cost a single
// predicted-not-taken branch and the event order is byte-identical to a
// build without this header — the golden-trace tests pin that down. The
// PCT-style implementation lives in src/check/perturb.hpp; this interface
// stays in sim so the engine depends on nothing above it.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace hmps::sim {

class Perturber {
 public:
  virtual ~Perturber() = default;

  /// Extra cycles to postpone the resume of `fiber` scheduled for absolute
  /// time `t`. Fiber ids equal spawn order (== thread ids under
  /// rt::SimExecutor). Must be deterministic in the perturber's own state.
  virtual Cycle resume_delay(std::uint32_t fiber, Cycle t) = 0;

  /// Extra cycles to stall the calling thread at the named sync-layer yield
  /// point `where` (static string). `tid`/`core` identify the thread and
  /// its current core; `now` is the simulated time of the visit.
  virtual Cycle point_delay(std::uint32_t tid, std::uint32_t core,
                            const char* where, Cycle now) = 0;
};

}  // namespace hmps::sim

// Ablation: the core-economy tradeoff behind combining (paper
// introduction / Section 3): with k contended objects on a 36-core chip,
// you can
//   (a) dedicate k server cores (one MP-SERVER each) — fastest per object
//       but burns cores that could run application threads;
//   (b) put all k objects on ONE server core (MP-SERVER-HUB, the paper's
//       opcode interface) — one core burned, server saturates across
//       objects;
//   (c) use HYBCOMB per object — zero dedicated cores, per-object
//       throughput between the two.
// All configurations get the same TOTAL core budget; server cores eat into
// the application-thread count.
#include <cstdio>
#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "harness/report.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/mp_server_hub.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

enum class Mode { kServerPerObject, kHub, kHybComb };

double run(Mode mode, std::uint32_t nobjects, sim::Cycle window,
           std::uint64_t seed) {
  const std::uint32_t total_cores = 36;
  const std::uint32_t nservers = mode == Mode::kServerPerObject ? nobjects
                                 : mode == Mode::kHub           ? 1
                                                                : 0;
  const std::uint32_t napp = total_cores - nservers;

  rt::SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  std::vector<std::unique_ptr<ds::SeqCounter>> objs;
  for (std::uint32_t i = 0; i < nobjects; ++i) {
    objs.push_back(std::make_unique<ds::SeqCounter>());
  }

  std::vector<std::unique_ptr<sync::MpServer<SimCtx>>> servers;
  sync::MpServerHub<SimCtx> hub(0);
  std::vector<std::uint64_t> hub_ops;
  std::vector<std::unique_ptr<sync::HybComb<SimCtx>>> hybs;

  if (mode == Mode::kServerPerObject) {
    for (std::uint32_t i = 0; i < nobjects; ++i) {
      servers.push_back(
          std::make_unique<sync::MpServer<SimCtx>>(i, objs[i].get()));
    }
  } else if (mode == Mode::kHub) {
    for (std::uint32_t i = 0; i < nobjects; ++i) {
      hub_ops.push_back(hub.add_op(&ds::counter_inc<SimCtx>, objs[i].get()));
    }
  } else {
    for (std::uint32_t i = 0; i < nobjects; ++i) {
      hybs.push_back(std::make_unique<sync::HybComb<SimCtx>>(objs[i].get(),
                                                             200));
    }
  }

  for (std::uint32_t s = 0; s < nservers; ++s) {
    ex.add_thread([&, s](SimCtx& ctx) {
      if (mode == Mode::kHub) {
        hub.serve(ctx);
      } else {
        servers[s]->serve(ctx);
      }
    });
  }
  std::vector<std::uint64_t> done(napp, 0);
  for (std::uint32_t i = 0; i < napp; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      std::uint64_t k = i;
      for (;;) {
        const std::uint32_t o = static_cast<std::uint32_t>(k++ % nobjects);
        switch (mode) {
          case Mode::kServerPerObject:
            servers[o]->apply(ctx, &ds::counter_inc<SimCtx>, 0);
            break;
          case Mode::kHub:
            hub.apply(ctx, hub_ops[o], 0);
            break;
          case Mode::kHybComb:
            hybs[o]->apply(ctx, &ds::counter_inc<SimCtx>, 0);
            break;
        }
        ++done[i];
        ctx.compute(2 * ctx.rand_below(51));
      }
    });
  }
  ex.run_until(60'000);
  std::uint64_t o0 = 0;
  for (auto d : done) o0 += d;
  ex.run_until(60'000 + window);
  std::uint64_t o1 = 0;
  for (auto d : done) o1 += d;
  return static_cast<double>(o1 - o0) / static_cast<double>(window) * 1200.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  const sim::Cycle window = args.window ? args.window : 150'000;

  std::vector<std::uint32_t> objects =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 8, 12, 16, 20}
                : std::vector<std::uint32_t>{1, 4, 8, 16};

  harness::Table table({"objects", "k servers (Mops/s)", "1 hub server",
                        "HybComb (0 servers)"});
  for (std::uint32_t k : objects) {
    table.add_row({std::to_string(k),
                   harness::fmt(run(Mode::kServerPerObject, k, window,
                                    args.seed)),
                   harness::fmt(run(Mode::kHub, k, window, args.seed)),
                   harness::fmt(run(Mode::kHybComb, k, window, args.seed))});
    std::fprintf(stderr, "[abl-consolidation] objects=%u done\n", k);
  }
  table.print("Ablation: dedicating cores vs hub vs combining, total "
              "throughput across k objects");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence): two events scheduled for
// the same cycle fire in the order they were scheduled. This total order is
// what makes whole simulations bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace hmps::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `t`. `t` may be in the past
  /// relative to already-popped events only if the caller knows what it is
  /// doing (the scheduler never does this); it will fire "now".
  void schedule(Cycle t, Callback cb) {
    heap_.push(Event{t, next_seq_++, std::move(cb)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  Cycle next_time() const { return heap_.top().time; }

  /// Pops and returns the earliest event's callback, advancing `now` out.
  Callback pop(Cycle* now) {
    // std::priority_queue::top() is const; the callback must be moved out,
    // which is safe because we pop immediately after.
    Event& top = const_cast<Event&>(heap_.top());
    *now = top.time;
    Callback cb = std::move(top.cb);
    heap_.pop();
    return cb;
  }

  void clear() {
    while (!heap_.empty()) heap_.pop();
  }

 private:
  struct Event {
    Cycle time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hmps::sim

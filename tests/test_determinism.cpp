// Golden-trace determinism regression tests for the engine hot-path
// overhaul, plus the zero-allocation contract.
//
// The golden constants below were captured by running these exact scenarios
// against the SEED engine (std::function + std::priority_queue events,
// deque-based UDN queues, per-hop NoC walking, ucontext fibers) before the
// overhaul. The overhauled engine must reproduce every fingerprint and
// counter bit for bit: the (time, seq) event order, UDN counters, and NoC
// link_wait are the determinism contract (docs/ENGINE.md).
//
// The golden constants predate the coherence model's first-touch home
// assignment, so they deliberately do not cover coherence-model timings.
// (Those used to be ASLR-dependent — homes were hashed from host pointer
// addresses; they are now hashed from dense first-touch line ids and are
// reproducible across processes.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "arch/udn.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook: global operator new/delete tally every heap
// allocation in the binary. Tests read the delta across a steady-state
// window to prove the engine allocates nothing per event/message.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hmps {
namespace {

using sim::Cycle;
using sim::Tid;

struct Fp {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

struct ModelGold {
  std::uint64_t fp;
  Cycle end;
  std::uint64_t msgs, words, blocks, peak;
  std::uint64_t noc_msgs, noc_hops;
  Cycle link_wait;
};

void expect_gold(const ModelGold& got, const ModelGold& want) {
  EXPECT_EQ(got.fp, want.fp);
  EXPECT_EQ(got.end, want.end);
  EXPECT_EQ(got.msgs, want.msgs);
  EXPECT_EQ(got.words, want.words);
  EXPECT_EQ(got.blocks, want.blocks);
  EXPECT_EQ(got.peak, want.peak);
  EXPECT_EQ(got.noc_msgs, want.noc_msgs);
  EXPECT_EQ(got.noc_hops, want.noc_hops);
  EXPECT_EQ(got.link_wait, want.link_wait);
}

ModelGold gold_of(Fp fp, Cycle end, arch::UdnModel& udn) {
  const auto& u = udn.counters();
  const auto& n = udn.noc().counters();
  return ModelGold{fp.h,       end,    u.messages, u.words, u.sender_blocks,
                  u.peak_occupancy, n.messages, n.hops,  n.link_wait};
}

// Scenario: pure scheduler interleaving — fibers with pseudo-random waits
// plus bare callbacks racing at the same cycles. Exercises the (time, seq)
// total order.
TEST(GoldenTrace, SchedulerInterleave) {
  sim::Scheduler s;
  Fp fp;
  for (std::uint32_t j = 0; j < 6; ++j) {
    s.spawn([&s, &fp, j] {
      sim::Xoshiro256 rng(1000 + j);
      for (int i = 0; i < 400; ++i) {
        fp.mix(j);
        fp.mix(s.now());
        if (i % 7 == j % 7) {
          s.at(s.now() + rng.below(5), [&fp, j] { fp.mix(100 + j); });
        }
        s.wait_for(rng.below(7));
      }
    });
  }
  const Cycle end = s.run();
  EXPECT_EQ(fp.h, 4661895399910340196ull);
  EXPECT_EQ(end, 1232ull);
}

// Scenario: UDN ring traffic — every core sends to its right neighbour and
// receives from its left, with rng-derived sizes and think times.
ModelGold run_udn_ring(bool link_contention) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  p.model_link_contention = link_contention;
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  const std::uint32_t C = topo.cores();
  Fp fp;
  for (Tid i = 0; i < C; ++i) {
    s.spawn([&, i] {
      const Tid dst = (i + 1) % C;
      const Tid prev = (i + C - 1) % C;
      sim::Xoshiro256 think(500 + i);
      sim::Xoshiro256 out_sizes(900 + i);
      sim::Xoshiro256 in_sizes(900 + prev);
      std::uint64_t w[16];
      for (int m = 0; m < 150; ++m) {
        const std::size_t n = 1 + out_sizes.below(8);
        for (std::size_t k = 0; k < n; ++k) w[k] = i * 100000ull + m * 16 + k;
        udn.send(i, dst, i % udn.n_queues(), w, n);
        const std::size_t rn = 1 + in_sizes.below(8);
        std::uint64_t in[16];
        udn.receive(i, prev % udn.n_queues(), in, rn);
        fp.mix(in[0]);
        fp.mix(in[rn - 1]);
        fp.mix(s.now());
        s.wait_for(think.below(25));
      }
    });
  }
  const Cycle end = s.run();
  return gold_of(fp, end, udn);
}

TEST(GoldenTrace, UdnRing) {
  expect_gold(run_udn_ring(false),
              ModelGold{12640239833102257098ull, 5399, 1200, 5334, 0, 16, 0, 0,
                        0});
}

TEST(GoldenTrace, UdnRingLinkContention) {
  expect_gold(run_udn_ring(true),
              ModelGold{12640239833102257098ull, 5399, 1200, 5334, 0, 16, 1200,
                        2100, 3});
}

// Scenario: many-to-one flood on one queue, slow receiver — exercises credit
// backpressure (sender_blocks > 0) and ingress-port serialization.
ModelGold run_udn_flood(bool link_contention) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  p.model_link_contention = link_contention;
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  const std::uint32_t C = topo.cores();
  const std::uint64_t kMsgs = 400;
  Fp fp;
  for (Tid i = 1; i < C; ++i) {
    s.spawn([&, i] {
      std::uint64_t w[3];
      for (std::uint64_t m = 0; m < kMsgs; ++m) {
        w[0] = i;
        w[1] = m;
        w[2] = i * 7777 + m;
        udn.send(i, 0, 0, w, 3);
      }
    });
  }
  s.spawn([&] {
    sim::Xoshiro256 think(42);
    std::uint64_t w[3];
    for (std::uint64_t m = 0; m < (C - 1) * kMsgs; ++m) {
      udn.receive(0, 0, w, 3);
      fp.mix(w[0]);
      fp.mix(w[2]);
      s.wait_for(think.below(9));
    }
  });
  const Cycle end = s.run();
  return gold_of(fp, end, udn);
}

TEST(GoldenTrace, UdnFloodBackpressure) {
  expect_gold(run_udn_flood(false),
              ModelGold{7686226863619266309ull, 19550, 2800, 8400, 2759, 117,
                        0, 0, 0});
}

TEST(GoldenTrace, UdnFloodLinkContention) {
  expect_gold(run_udn_flood(true),
              ModelGold{7686226863619266309ull, 19550, 2800, 8400, 2759, 117,
                        2800, 6400, 820});
}

// Scenario: full 36-core mesh with link contention, all-to-one tree — wide
// NoC coverage including multi-hop XY routes in both directions.
TEST(GoldenTrace, NocAllPairs) {
  arch::MachineParams p;  // tilegx36
  p.model_link_contention = true;
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  const std::uint32_t C = topo.cores();
  Fp fp;
  for (Tid i = 1; i < C; ++i) {
    s.spawn([&, i] {
      sim::Xoshiro256 rng(3000 + i);
      std::uint64_t w[4] = {i, 0, 0, 0};
      for (int m = 0; m < 40; ++m) {
        w[1] = m;
        udn.send(i, 0, i % udn.n_queues(), w, 1 + (i + m) % 4);
        s.wait_for(rng.below(60));
      }
    });
  }
  // One receiver fiber per queue so a queue awaiting words never wedges the
  // drain of the others (credits are shared across the whole buffer).
  for (std::uint32_t q = 0; q < 4; ++q) {
    s.spawn([&, q] {
      std::uint64_t expect = 0;
      for (Tid i = 1; i < C; ++i)
        if (i % 4 == q)
          for (int m = 0; m < 40; ++m) expect += 1 + (i + m) % 4;
      std::uint64_t in[4];
      while (expect > 0) {
        const std::size_t n = expect < 4 ? expect : 4;
        udn.receive(0, q, in, n);
        expect -= n;
        fp.mix(in[0] + q);
      }
    });
  }
  const Cycle end = s.run();
  expect_gold(gold_of(fp, end, udn),
              ModelGold{12387181692252717492ull, 3533, 1400, 3500, 1117, 118,
                        1400, 7200, 16438});
}

// Scenario: multi-chip 8x8 mesh carved into a 2x2 chip grid with link
// contention — all-to-one traffic crossing inter-chip boundaries in both
// axes. Pins the chip-crossing surcharge (arch::MachineParams::chips_x/y,
// chip_hop_extra) end to end: default-path wire latencies AND the NoC
// contention model's per-link extras (docs/MODEL.md).
ModelGold run_multichip(std::uint32_t chips_x, std::uint32_t chips_y,
                        Cycle chip_extra) {
  arch::MachineParams p;
  p.mesh_w = 8;
  p.mesh_h = 8;
  p.chips_x = chips_x;
  p.chips_y = chips_y;
  p.chip_hop_extra = chip_extra;
  p.model_link_contention = true;
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  const std::uint32_t C = topo.cores();
  Fp fp;
  for (Tid i = 1; i < C; ++i) {
    s.spawn([&, i] {
      sim::Xoshiro256 rng(6000 + i);
      std::uint64_t w[4] = {i, 0, 0, 0};
      for (int m = 0; m < 20; ++m) {
        w[1] = m;
        udn.send(i, 0, i % udn.n_queues(), w, 1 + (i + m) % 4);
        s.wait_for(rng.below(80));
      }
    });
  }
  for (std::uint32_t q = 0; q < 4; ++q) {
    s.spawn([&, q] {
      std::uint64_t expect = 0;
      for (Tid i = 1; i < C; ++i)
        if (i % 4 == q)
          for (int m = 0; m < 20; ++m) expect += 1 + (i + m) % 4;
      std::uint64_t in[4];
      while (expect > 0) {
        const std::size_t n = expect < 4 ? expect : 4;
        udn.receive(0, q, in, n);
        expect -= n;
        fp.mix(in[0] + q);
      }
    });
  }
  const Cycle end = s.run();
  return gold_of(fp, end, udn);
}

TEST(GoldenTrace, MultiChipMesh2x2) {
  expect_gold(run_multichip(2, 2, 12),
              ModelGold{8276535421541217655ull, 3172, 1260, 3150, 1001, 118,
                        1260, 8960, 27114});
}

// The chip surcharge must actually cost cycles: the identical traffic on
// the same 8x8 mesh as one monolithic chip finishes sooner and waits less
// on links (same message/hop counts — routes are unchanged).
TEST(GoldenTrace, MultiChipSurchargeSlowsIdenticalTraffic) {
  const ModelGold mono = run_multichip(1, 1, 12);
  const ModelGold quad = run_multichip(2, 2, 12);
  EXPECT_EQ(mono.msgs, quad.msgs);
  EXPECT_EQ(mono.noc_hops, quad.noc_hops);
  EXPECT_LT(mono.end, quad.end);
  EXPECT_NE(mono.fp, quad.fp);  // completion order shifts under the extras
}

// ---------------------------------------------------------------------------
// Zero-allocation contract.
// ---------------------------------------------------------------------------

// Raw event queue: once warmed up, schedule/pop cycles of hot-path-sized
// callbacks (inline in the event record) must not touch the heap at all.
TEST(ZeroAlloc, EventQueueSteadyState) {
  sim::EventQueue q;
  std::uint64_t fired = 0;
  // Warmup: grow the slot pool to its high-water mark AND run the schedule
  // pattern through a full timing-wheel revolution so every bucket reaches
  // its per-round capacity.
  Cycle t = 0;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.schedule(t + 1 + i % 7, [&fired, i] { fired += i; });
    }
    while (!q.empty()) q.pop(&t)();
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const auto spills_before = q.counters().spill_allocs;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.schedule(t + 1 + i % 7, [&fired, i] { fired += i; });
    }
    while (!q.empty()) q.pop(&t)();
  }
  EXPECT_EQ(g_allocs.load() - allocs_before, 0u);
  EXPECT_EQ(q.counters().spill_allocs - spills_before, 0u);
  EXPECT_GT(fired, 0u);
}

// Whole engine: a UDN ping-pong in steady state — fiber switches, event
// scheduling, message staging, blocking receives, waiter wakeups — must be
// allocation-free per round trip.
TEST(ZeroAlloc, UdnPingPongSteadyState) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  std::uint64_t rounds = 0;
  std::uint64_t allocs_at_steady = 0;
  s.spawn([&] {
    std::uint64_t w[3] = {1, 2, 3};
    for (;;) {
      udn.send(0, 5, 0, w, 3);
      udn.receive(0, 1, w, 3);
      if (++rounds == 1000) allocs_at_steady = g_allocs.load();
      if (rounds == 11000) {
        s.stop();
        return;
      }
    }
  });
  s.spawn([&] {
    std::uint64_t w[3];
    for (;;) {
      udn.receive(5, 0, w, 3);
      udn.send(5, 0, 1, w, 3);
    }
  });
  s.run();
  EXPECT_EQ(rounds, 11000u);
  EXPECT_EQ(g_allocs.load() - allocs_at_steady, 0u);
  EXPECT_EQ(s.engine_counters().spill_allocs, 0u);
}

// Fuzz the (time, seq) total order across the timing wheel's near/far split:
// random deltas up to 5000 cycles land events in both the wheel (< 1024) and
// the overflow heap (>= 1024), including equal times in both structures.
// Whatever the internal placement, the fired sequence must be exactly the
// events sorted by (time, schedule order).
TEST(EventQueueOrder, WheelOverflowFuzz) {
  sim::EventQueue q;
  sim::Xoshiro256 rng(77);
  struct Rec {
    Cycle time;
    std::uint64_t seq;
  };
  std::vector<Rec> fired;
  std::uint64_t seq = 0;
  Cycle now = 0;
  const auto schedule_one = [&] {
    const Cycle t = now + rng.below(5000);
    const std::uint64_t s = seq++;
    q.schedule(t, [&fired, t, s] { fired.push_back(Rec{t, s}); });
  };
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t n = 1 + rng.below(3);
    for (std::uint64_t k = 0; k < n; ++k) schedule_one();
    for (std::uint64_t k = rng.below(4); k > 0 && !q.empty(); --k) {
      q.pop(&now)();
    }
  }
  while (!q.empty()) q.pop(&now)();

  ASSERT_EQ(fired.size(), seq);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    const bool ordered = fired[i - 1].time < fired[i].time ||
                         (fired[i - 1].time == fired[i].time &&
                          fired[i - 1].seq < fired[i].seq);
    ASSERT_TRUE(ordered) << "misordered at index " << i;
  }
}

// The self-counters must account for every event exactly once. Two fibers
// with overlapping waits keep each other's resume pending, so the waits go
// through the event queue rather than the wait_until fast path.
TEST(EngineCounters, ScheduledMatchesExecuted) {
  sim::Scheduler s;
  int ticks = 0;
  s.spawn([&] {
    for (; ticks < 100; ++ticks) s.wait_for(3);
  });
  s.spawn([&] {
    while (ticks < 100) s.wait_for(3);
  });
  s.run();
  const auto& c = s.engine_counters();
  EXPECT_EQ(c.scheduled, c.executed);
  EXPECT_GE(c.scheduled, 100u);
  EXPECT_GE(c.peak_depth, 1u);
}

// A lone fiber's waits never race another event, so they are satisfied by
// fast-forwarding the clock: no events beyond the initial spawn resume.
TEST(EngineCounters, LoneFiberWaitsFastForward) {
  sim::Scheduler s;
  int ticks = 0;
  s.spawn([&] {
    for (; ticks < 100; ++ticks) s.wait_for(3);
  });
  const sim::Cycle end = s.run();
  EXPECT_EQ(end, 300u);
  const auto& c = s.engine_counters();
  EXPECT_EQ(c.scheduled, 1u);  // the spawn resume only
  EXPECT_EQ(c.executed, 1u);
  EXPECT_EQ(c.fast_forwards, 100u);
}

}  // namespace
}  // namespace hmps

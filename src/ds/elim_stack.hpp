// Elimination back-off stack (Shavit & Touitou; Hendler-Shavit-Yerushalmi
// style back-off). The paper's Section 5.4 notes elimination is orthogonal
// to its evaluation and that any non-elimination stack "can be used to back
// up an elimination-based stack" — this is that extension: a Treiber core
// whose contended operations divert to a collision array where concurrent
// push/pop pairs cancel out without touching the top pointer.
#pragma once

#include <cstdint>

#include "ds/stack.hpp"
#include "runtime/context.hpp"

namespace hmps::ds {

template <class Ctx>
class ElimStack {
 public:
  /// The collision slots and per-thread stats are fixed arrays.
  static constexpr std::uint32_t kMaxThreads = 64;

  explicit ElimStack(std::uint32_t per_thread_nodes = 256,
                     std::uint32_t slots = 8, sim::Cycle wait = 64)
      : core_(per_thread_nodes), nslots_(slots), wait_(wait) {}

  /// Values are 32-bit (they share a slot word with protocol state).
  void push(Ctx& ctx, std::uint32_t v) {
    sync::check_tid(ctx.tid(), kMaxThreads, "ElimStack::push");
    for (;;) {
      if (try_push_top(ctx, v)) return;
      if (eliminate_push(ctx, v)) {
        ++stats_[ctx.tid()].eliminations;
        return;
      }
      ctx.cpu_relax();
    }
  }

  /// Returns the popped value or kStackEmpty.
  std::uint64_t pop(Ctx& ctx) {
    sync::check_tid(ctx.tid(), kMaxThreads, "ElimStack::pop");
    for (;;) {
      std::uint64_t v;
      if (try_pop_top(ctx, &v)) return v;  // value, or observed empty
      std::uint32_t got;
      if (eliminate_pop(ctx, &got)) {
        ++stats_[ctx.tid()].eliminations;
        return got;
      }
      ctx.cpu_relax();
    }
  }

  struct Stats {
    std::uint64_t eliminations = 0;
  };
  Stats& stats(std::uint32_t t) {
    sync::check_tid(t, kMaxThreads, "ElimStack::stats");
    return stats_[t];
  }

 private:
  // Slot word: {state:2 | value:32}; states: empty, waiting push, taken.
  static constexpr std::uint64_t kEmptySlot = 0;
  static constexpr std::uint64_t kStatePush = std::uint64_t{1} << 62;
  static constexpr std::uint64_t kStateTaken = std::uint64_t{2} << 62;

  static constexpr std::uint64_t pack_push(std::uint32_t v) {
    return kStatePush | v;
  }
  static constexpr bool is_push(std::uint64_t w) {
    return (w & (std::uint64_t{3} << 62)) == kStatePush;
  }
  static constexpr std::uint32_t slot_val(std::uint64_t w) {
    return static_cast<std::uint32_t>(w);
  }

  bool try_push_top(Ctx& ctx, std::uint32_t v) {
    // One attempt on the Treiber core; on CAS failure, divert.
    return core_.try_push(ctx, v);
  }

  /// On return false: if *out == kStackEmpty the stack was empty (give up),
  /// otherwise the CAS lost a race (try elimination).
  bool try_pop_top(Ctx& ctx, std::uint64_t* out) {
    return core_.try_pop(ctx, out);
  }

  bool eliminate_push(Ctx& ctx, std::uint32_t v) {
    rt::Word* slot = &slots_[ctx.rand_below(nslots_)].w;
    if (!ctx.cas(slot, kEmptySlot, pack_push(v))) return false;
    ctx.compute(wait_);  // linger for a partner
    const std::uint64_t cur = ctx.load(slot);
    if (cur == kStateTaken) {
      ctx.store(slot, kEmptySlot);  // hand the slot back
      return true;
    }
    // Cancel; if the cancel CAS fails a popper took it in the window.
    if (ctx.cas(slot, pack_push(v), kEmptySlot)) return false;
    ctx.store(slot, kEmptySlot);
    return true;
  }

  bool eliminate_pop(Ctx& ctx, std::uint32_t* out) {
    rt::Word* slot = &slots_[ctx.rand_below(nslots_)].w;
    const std::uint64_t cur = ctx.load(slot);
    if (!is_push(cur)) return false;
    if (!ctx.cas(slot, cur, kStateTaken)) return false;
    *out = slot_val(cur);
    return true;
  }

  // Treiber core with single-attempt entry points.
  class Core : public TreiberStack<Ctx> {
   public:
    using Base = TreiberStack<Ctx>;
    using Base::Base;

    bool try_push(Ctx& ctx, std::uint32_t v) {
      return Base::push_once(ctx, v);
    }
    bool try_pop(Ctx& ctx, std::uint64_t* out) {
      return Base::pop_once(ctx, out);
    }
  };

  struct alignas(rt::kCacheLine) Slot {
    rt::Word w{0};
  };
  struct alignas(rt::kCacheLine) PaddedStats : Stats {};

  Core core_;
  std::uint32_t nslots_;
  sim::Cycle wait_;
  Slot slots_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::ds

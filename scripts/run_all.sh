#!/usr/bin/env bash
# Builds everything, runs the full test suite, every paper-figure bench and
# every example, capturing outputs under results/. This is the one-shot
# reproduction entry point.
#
# Usage: scripts/run_all.sh [--jobs N]
#   --jobs N   worker threads for the in-process run pool of every sweep
#              bench (and ctest parallelism). Defaults to $HMPS_JOBS if set,
#              else each bench picks hardware_concurrency itself.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HMPS_JOBS:-0}"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "run_all.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee results/ctest.txt

echo "== benches =="
# stdout goes to bench_all.txt; stderr (progress lines, warnings) is kept
# visible AND captured — a silently swallowed bench failure here once cost a
# debugging session. Every hmps bench also drops its hmps-metrics-v1
# artifact next to the text output; the two google-benchmark binaries
# (native_micro, engine_micro) have their own CLI and are run bare. Each
# bench's wall time is reported inline and collected in bench_times.txt so
# --jobs speedups are visible at a glance.
: > results/bench_times.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "### $name"
    t0=$(date +%s%N)
    case "$name" in
      native_micro|engine_micro) "$b" ;;
      *) "$b" --json "results/$name.json" --jobs "$JOBS" ;;
    esac
    t1=$(date +%s%N)
    wall=$(awk -v ns=$((t1 - t0)) 'BEGIN { printf "%.2f", ns / 1e9 }')
    echo "[time] $name: ${wall}s (jobs=$JOBS)"
    echo "$name $wall" >> results/bench_times.txt
    echo
  fi
done 2> >(tee results/bench_stderr.txt >&2) | tee results/bench_all.txt

echo "== examples =="
for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "### $(basename "$e")"
    "$e"
    echo
  fi
done | tee results/examples.txt

echo "All outputs captured under results/."

// Tests for the extension components: flat combining, DSM-Synch, and the
// elimination back-off stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/params.hpp"
#include "check/explore.hpp"
#include "check/gen.hpp"
#include "ds/counter.hpp"
#include "ds/elim_stack.hpp"
#include "harness/history.hpp"
#include "harness/record.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/dsm_synch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/hsynch.hpp"
#include "sync/oyama.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

struct MutexProbe {
  ds::SeqCounter counter;
  int inside = 0;
  int max_inside = 0;
};

std::uint64_t probe_cs(SimCtx& ctx, void* obj, std::uint64_t /*arg*/) {
  auto* p = static_cast<MutexProbe*>(obj);
  ++p->inside;
  if (p->inside > p->max_inside) p->max_inside = p->inside;
  const std::uint64_t v = ctx.load(&p->counter.value);
  ctx.compute(7);
  ctx.store(&p->counter.value, v + 1);
  --p->inside;
  return v;
}

enum class Kind { kFlatCombining, kDsmSynch, kHSynch, kOyama };

struct Outcome {
  std::uint64_t final_count = 0;
  int max_inside = 0;
  bool unique_returns = true;
  std::uint64_t tenures = 0;
  std::uint64_t served = 0;
};

Outcome run(Kind kind, std::uint32_t nthreads, std::uint64_t ops_each,
            std::uint64_t seed, std::uint32_t max_ops = 16) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  MutexProbe probe;
  sync::FlatCombining<SimCtx> fc(&probe);
  sync::DsmSynch<SimCtx> dsm(&probe, max_ops);
  sync::HSynch<SimCtx> hs(&probe, max_ops);
  sync::OyamaComb<SimCtx> oy(&probe);
  std::vector<std::uint64_t> all;

  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        std::uint64_t r = 0;
        switch (kind) {
          case Kind::kFlatCombining: r = fc.apply(ctx, probe_cs, 0); break;
          case Kind::kDsmSynch: r = dsm.apply(ctx, probe_cs, 0); break;
          case Kind::kHSynch: r = hs.apply(ctx, probe_cs, 0); break;
          case Kind::kOyama: r = oy.apply(ctx, probe_cs, 0); break;
        }
        all.push_back(r);
        ctx.compute(ctx.rand_below(25));
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  Outcome o;
  o.final_count = probe.counter.value.load();
  o.max_inside = probe.max_inside;
  std::sort(all.begin(), all.end());
  o.unique_returns =
      std::adjacent_find(all.begin(), all.end()) == all.end();
  for (std::uint32_t t = 0; t < 64; ++t) {
    const sync::SyncStats* s = nullptr;
    switch (kind) {
      case Kind::kFlatCombining: s = &fc.stats(t); break;
      case Kind::kDsmSynch: s = &dsm.stats(t); break;
      case Kind::kHSynch: s = &hs.stats(t); break;
      case Kind::kOyama: s = &oy.stats(t); break;
    }
    o.tenures += s->tenures;
    o.served += s->served;
  }
  return o;
}

class ExtUc
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(ExtUc, MutualExclusionAndCompleteness) {
  const auto [kind, nthreads, seed] = GetParam();
  const std::uint64_t ops_each = 60;
  const Outcome o = run(kind, nthreads, ops_each, seed);
  EXPECT_EQ(o.final_count, static_cast<std::uint64_t>(nthreads) * ops_each);
  EXPECT_EQ(o.max_inside, 1);
  EXPECT_TRUE(o.unique_returns);
  EXPECT_EQ(o.served, o.final_count) << "every CS execution is accounted";
}

std::string ExtName(
    const ::testing::TestParamInfo<std::tuple<Kind, std::uint32_t,
                                              std::uint64_t>>& info) {
  static const char* names[] = {"FlatCombining", "DsmSynch", "HSynch",
                                "Oyama"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Exts, ExtUc,
    ::testing::Combine(::testing::Values(Kind::kFlatCombining,
                                         Kind::kDsmSynch, Kind::kHSynch,
                                         Kind::kOyama),
                       ::testing::Values(1u, 2u, 8u, 24u, 35u),
                       ::testing::Values(1u, 42u)),
    ExtName);

TEST(HSynchBehavior, ClusterCombinersCombine) {
  const Outcome o = run(Kind::kHSynch, 24, 80, 9, /*max_ops=*/32);
  EXPECT_GT(static_cast<double>(o.served) / static_cast<double>(o.tenures),
            1.2);
}

TEST(OyamaBehavior, OwnerDrainsPendingList) {
  const Outcome o = run(Kind::kOyama, 24, 80, 9);
  EXPECT_GT(static_cast<double>(o.served) / static_cast<double>(o.tenures),
            1.5);
}

TEST(DsmSynchBehavior, CombinesUnderLoad) {
  const Outcome o = run(Kind::kDsmSynch, 24, 80, 9, /*max_ops=*/32);
  EXPECT_GT(o.served, 0u);
  EXPECT_GT(static_cast<double>(o.served) / static_cast<double>(o.tenures),
            1.5)
      << "DSM-Synch should combine multiple requests per tenure under load";
}

TEST(FlatCombiningBehavior, CombinesUnderLoad) {
  const Outcome o = run(Kind::kFlatCombining, 24, 80, 9);
  EXPECT_GT(static_cast<double>(o.served) / static_cast<double>(o.tenures),
            1.5);
}

// ---- elimination stack ----

TEST(ElimStack, SequentialLifo) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::ElimStack<SimCtx> st;
  std::vector<std::uint64_t> got;
  ex.add_thread([&](SimCtx& ctx) {
    EXPECT_EQ(st.pop(ctx), ds::kStackEmpty);
    for (std::uint32_t v = 1; v <= 50; ++v) st.push(ctx, v);
    for (int i = 0; i < 50; ++i) got.push_back(st.pop(ctx));
    EXPECT_EQ(st.pop(ctx), ds::kStackEmpty);
  });
  ex.run_until(sim::kCycleMax);
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[i], static_cast<std::uint64_t>(50 - i));
  }
}

class ElimStackConc
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(ElimStackConc, NoLossNoDupUnderContention) {
  const auto [nthreads, seed] = GetParam();
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::ElimStack<SimCtx> st(512);
  const std::uint32_t ops = 60;
  std::vector<std::vector<std::uint64_t>> popped(nthreads);
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops; ++k) {
        st.push(ctx, (i << 20) | k);
        const std::uint64_t v = st.pop(ctx);
        if (v != ds::kStackEmpty) popped[i].push_back(v);
        ctx.compute(ctx.rand_below(20));
      }
      ++done;
      if (done == nthreads) {
        for (;;) {
          const std::uint64_t v = st.pop(ctx);
          if (v == ds::kStackEmpty) break;
          popped[i].push_back(v);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::vector<std::uint64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(nthreads) * ops);
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

INSTANTIATE_TEST_SUITE_P(
    Contention, ElimStackConc,
    ::testing::Combine(::testing::Values(2u, 8u, 24u),
                       ::testing::Values(3u, 77u)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---- schedule-exploration coverage (src/check, docs/TESTING.md) ----
//
// Drive each extension construction through the exploration harness with an
// aggressive perturbation plan (rank delays + point preemptions at the
// sync-layer yield points) and require the recorded history to pass both the
// fast sound checks and — for these small windows — the complete checker.

check::Scenario perturbed_scenario(harness::Construction c,
                                   harness::Object o, std::uint64_t seed) {
  check::Scenario s;
  s.cfg.construction = c;
  s.cfg.object = o;
  s.cfg.seed = seed;
  s.cfg.threads = 4;
  s.cfg.ops_each = 6;
  s.cfg.max_ops = 4;
  s.cfg.think_max = 20;
  s.perturb.seed = seed ^ 0xBEEF;
  s.perturb.nthreads =
      s.cfg.threads + (harness::uses_server(c) ? 1 : 0);
  s.perturb.change_points = 3;
  s.perturb.change_interval = 50'000;
  s.perturb.resume_permille = 200;
  s.perturb.delay_unit = 400;
  s.perturb.point_permille = 300;
  s.perturb.point_delay_max = 5'000;
  check::clamp_cfg(s.cfg);
  return s;
}

class ExtExplore
    : public ::testing::TestWithParam<
          std::tuple<harness::Construction, harness::Object, std::uint64_t>> {
};

TEST_P(ExtExplore, PerturbedHistoriesStayLinearizable) {
  const auto [c, o, seed] = GetParam();
  const check::Violation v =
      check::run_scenario(perturbed_scenario(c, o, seed));
  EXPECT_FALSE(v.found) << "[" << v.kind << "] " << v.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Exts, ExtExplore,
    ::testing::Combine(
        ::testing::Values(harness::Construction::kOyama,
                          harness::Construction::kHSynch,
                          harness::Construction::kDsmSynch,
                          harness::Construction::kFlatCombining),
        ::testing::Values(harness::Object::kCounter, harness::Object::kQueue,
                          harness::Object::kStack),
        ::testing::Values(11u, 97u)),
    [](const auto& info) {
      return std::string(harness::to_string(std::get<0>(info.param))) + "_" +
             harness::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ExtExploreElim, PerturbedElimStackStaysSound) {
  // The construction field is ignored for direct concurrent objects; the
  // elimination stack runs lock-free against the perturbed schedule.
  for (const std::uint64_t seed : {7u, 131u}) {
    const check::Violation v = check::run_scenario(perturbed_scenario(
        harness::Construction::kCcSynch, harness::Object::kElimStack, seed));
    EXPECT_FALSE(v.found) << "[" << v.kind << "] " << v.detail;
  }
}

// ---- fixed-pool capacity aborts (sync::check_tid) ----

TEST(ExtCapacityDeath, StatsIndexBeyondPoolAborts) {
  ds::SeqCounter c;
  sync::OyamaComb<SimCtx> oy(&c);
  sync::HSynch<SimCtx> hs(&c, 8);
  sync::DsmSynch<SimCtx> dsm(&c, 8);
  sync::FlatCombining<SimCtx> fc(&c);
  ds::ElimStack<SimCtx> st;
  EXPECT_DEATH(oy.stats(64), "exceeds the construction's fixed capacity");
  EXPECT_DEATH(hs.stats(64), "exceeds the construction's fixed capacity");
  EXPECT_DEATH(dsm.stats(100), "exceeds the construction's fixed capacity");
  EXPECT_DEATH(fc.stats(64), "exceeds the construction's fixed capacity");
  EXPECT_DEATH(st.stats(64), "exceeds the construction's fixed capacity");
}

TEST(ElimStack, EliminationActuallyHappens) {
  // Heavy symmetric push/pop traffic with no think time should see some
  // operations eliminated without touching the top pointer.
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  ds::ElimStack<SimCtx> st(512, /*slots=*/8, /*wait=*/96);
  const std::uint32_t nthreads = 32;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < 200; ++k) {
        st.push(ctx, (i << 20) | k);
        (void)st.pop(ctx);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::uint64_t elims = 0;
  for (std::uint32_t t = 0; t < 64; ++t) elims += st.stats(t).eliminations;
  EXPECT_GT(elims, 0u);
}

}  // namespace
}  // namespace hmps

file(REMOVE_RECURSE
  "CMakeFiles/fig5b_stacks.dir/fig5b_stacks.cpp.o"
  "CMakeFiles/fig5b_stacks.dir/fig5b_stacks.cpp.o.d"
  "fig5b_stacks"
  "fig5b_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

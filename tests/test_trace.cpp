// Tests for the execution tracer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/trace.hpp"
#include "sync/mp_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(Tracer, DisabledCollectsNothing) {
  sim::Tracer t;
  t.event(0, "x", 0, 5);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, CollectsAndCaps) {
  sim::Tracer t;
  t.enable(3);
  for (int i = 0; i < 10; ++i) t.event(0, "e", i, 1);
  EXPECT_EQ(t.size(), 3u);
}

TEST(Tracer, WritesValidChromeJson) {
  sim::Tracer t;
  t.enable();
  t.event(2, "load-miss", 100, 40);
  t.event(3, "compute", 140, 7);
  const std::string path = "/tmp/hmps_tracer_test.json";
  t.write_chrome_json(path);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("\"name\":\"load-miss\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(s.find("\"ts\":100"), std::string::npos);
  EXPECT_EQ(s.front(), '[');
}

TEST(Tracer, SimulationEmitsEventsWhenEnabled) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ex.machine().tracer().enable();
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 10; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(ex.machine().tracer().size(), 40u);  // sends/receives/loads...
}

TEST(Tracer, NoOverheadPathWhenDisabled) {
  // Behavioral check: identical op counts with tracer on/off.
  auto run = [](bool trace) {
    SimExecutor ex(arch::MachineParams::tilegx36(), 1);
    if (trace) ex.machine().tracer().enable();
    ds::SeqCounter c;
    sync::MpServer<SimCtx> mp(0, &c);
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 25; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      mp.request_stop(ctx);
    });
    ex.run_until(sim::kCycleMax);
    return std::pair<std::uint64_t, sim::Cycle>(c.value.load(),
                                                ex.sched().now());
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a.first, b.first);
  // Timing identical: tracing must not perturb the simulation.
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hmps

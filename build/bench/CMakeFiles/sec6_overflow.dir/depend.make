# Empty dependencies file for sec6_overflow.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sync_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ds_sim[1]_include.cmake")
include("/root/repo/build/tests/test_native[1]_include.cmake")
include("/root/repo/build/tests/test_history[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sec6_practical[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_ds_edge[1]_include.cmake")
include("/root/repo/build/tests/test_hub[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_params[1]_include.cmake")
include("/root/repo/build/tests/test_sync_mechanics[1]_include.cmake")
include("/root/repo/build/tests/test_stress_engine[1]_include.cmake")
add_test(plot_ascii_smoke "/usr/bin/cmake" "-E" "env" "/root/.pyenv/shims/python3" "/root/repo/scripts/plot_ascii.py" "/root/repo/tests/data/sample_fig.csv" "--width" "40" "--height" "10")
set_tests_properties(plot_ascii_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/sec53_scalar_claims.dir/sec53_scalar_claims.cpp.o"
  "CMakeFiles/sec53_scalar_claims.dir/sec53_scalar_claims.cpp.o.d"
  "sec53_scalar_claims"
  "sec53_scalar_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_scalar_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

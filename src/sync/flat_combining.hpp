// Flat combining (Hendler, Incze, Shavit, Tzafrir — the paper's reference
// [13]): the original combining construction. Threads publish requests in
// per-thread publication records; whoever acquires the (TTAS) lock scans
// the publication array and executes every pending request, then releases.
//
// Compared to CC-SYNCH, the combiner pays a full scan over all publication
// records per pass (including inactive ones), which is why CC-SYNCH
// superseded it; included here as an extension baseline.
#pragma once

#include <cstdint>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class FlatCombining {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `max_passes`: combining passes per lock tenure.
  FlatCombining(void* obj, std::uint32_t max_threads = kMaxThreads,
                std::uint32_t max_passes = 4)
      : obj_(obj), nrecs_(max_threads), passes_(max_passes) {
    // The publication array is fixed; a larger max_threads would make the
    // combiner scan past it.
    check_tid(max_threads ? max_threads - 1 : 0, kMaxThreads,
              "FlatCombining (max_threads)");
  }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "FlatCombining::apply");
    SyncStats& st = stats_[tid].s;
    Record& my = recs_[tid];
    const std::uint64_t seq = ++my_seq_[tid].v;
    ctx.store(&my.arg, arg);
    ctx.store(&my.fn, rt::to_word(fn));
    explore_point(ctx, "fc.publish");
    ctx.store(&my.req_seq, seq);  // publish

    for (;;) {
      if (ctx.load(&my.done_seq) == seq) {
        ++st.ops;
        return ctx.load(&my.ret);
      }
      // TTAS acquisition attempt.
      if (ctx.load(&lock_) == 0 &&
          ctx.exchange(&lock_, std::uint64_t{1}) == 0) {
        ++st.tenures;
        for (std::uint32_t pass = 0; pass < passes_; ++pass) {
          bool found = false;
          for (std::uint32_t i = 0; i < nrecs_; ++i) {
            Record& r = recs_[i];
            const std::uint64_t rs = ctx.load(&r.req_seq);
            if (rs != ctx.load(&r.done_seq)) {
              Fn f = rt::from_word<std::remove_pointer_t<Fn>>(
                  ctx.load(&r.fn));
              ctx.store(&r.ret, f(ctx, obj_, ctx.load(&r.arg)));
              ctx.store(&r.done_seq, rs);
              ++st.served;
              found = true;
            }
          }
          if (!found) break;
        }
        explore_point(ctx, "fc.release");
        ctx.store(&lock_, std::uint64_t{0});
        // Our own record was served during the pass.
        ++st.ops;
        return ctx.load(&my.ret);
      }
      ctx.cpu_relax();
    }
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "FlatCombining::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) Record {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word req_seq{0};
    Word done_seq{0};
  };
  struct alignas(rt::kCacheLine) PaddedSeq {
    std::uint64_t v = 0;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  void* obj_;
  std::uint32_t nrecs_;
  std::uint32_t passes_;
  alignas(rt::kCacheLine) Word lock_{0};
  Record recs_[kMaxThreads];
  PaddedSeq my_seq_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

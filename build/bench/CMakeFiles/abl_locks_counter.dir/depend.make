# Empty dependencies file for abl_locks_counter.
# This may be replaced when dependencies are built.

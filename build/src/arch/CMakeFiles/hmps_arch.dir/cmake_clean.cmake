file(REMOVE_RECURSE
  "CMakeFiles/hmps_arch.dir/coherence.cpp.o"
  "CMakeFiles/hmps_arch.dir/coherence.cpp.o.d"
  "CMakeFiles/hmps_arch.dir/noc.cpp.o"
  "CMakeFiles/hmps_arch.dir/noc.cpp.o.d"
  "CMakeFiles/hmps_arch.dir/udn.cpp.o"
  "CMakeFiles/hmps_arch.dir/udn.cpp.o.d"
  "libhmps_arch.a"
  "libhmps_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmps_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// SHM-SERVER (paper Sections 3 and 5.2): the pure-shared-memory server
// approach — a simplified Remote Core Locking (RCL) with the same core
// mechanism and performance: one dedicated cache line per client used as a
// bidirectional request/response channel.
//
// Protocol on each 64-byte channel line:
//   client: writes arg, fn, then bumps req_seq; spins on resp_seq.
//   server: round-robin scans channels; a req_seq ahead of resp_seq is a
//           pending request; executes it, writes ret, bumps resp_seq.
// The server's read of a freshly written channel is one RMR (the line is
// dirty in the client's cache) and its response write is a second RMR
// (invalidating the spinning client) — the two stalls of Fig. 1.
//
// The server prefetches the next channel while working (the software
// pipelining a compiler performs at -O3 on an in-order core), which is what
// lets those RMRs overlap with long CS bodies (Fig. 4c).
#pragma once

#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class ShmServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `max_clients` fixes the channel array size; client thread ids must be
  /// < max_clients (and <= kMaxThreads: the per-thread seq/stats slots are
  /// fixed arrays). `async_depth` > 0 adds that many private async channel
  /// lines per client (docs/MODEL.md §9): slot 0 stays the synchronous
  /// channel with exactly the classic layout and scan order, slots
  /// 1..async_depth carry apply_async() requests reaped out of order. The
  /// server scans max_clients * (1 + async_depth) lines.
  ShmServer(Tid server_tid, void* obj, std::uint32_t max_clients = kMaxThreads,
            std::uint32_t async_depth = 0)
      : server_(server_tid), obj_(obj), nclients_(max_clients),
        depth_(async_depth > kMaxAsyncDepth ? kMaxAsyncDepth : async_depth),
        nchan_(max_clients * (1 + depth_)),
        chans_(new Channel[nchan_]) {
    check_tid(max_clients ? max_clients - 1 : 0, kMaxThreads,
              "ShmServer (max_clients)");
  }

  Tid server_tid() const { return server_; }
  std::uint32_t async_depth() const { return depth_; }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    check_tid(ctx.tid(), nclients_, "ShmServer::apply");
    obs::Span<Ctx> span(ctx, "shm.request");
    Channel& ch = chans_[chan_index(ctx.tid(), 0)];
    const std::uint64_t seq = ++my_seq_[ctx.tid()].v;
    ctx.store(&ch.arg, arg);
    ctx.store(&ch.fn, rt::to_word(fn));
    explore_point(ctx, "shm.publish");
    ctx.store(&ch.req_seq, seq);
    while (ctx.load(&ch.resp_seq) != seq) ctx.cpu_relax();
    return ctx.load(&ch.ret);
  }

  /// Publishes the request on a free private async slot and returns without
  /// waiting for the server. When every slot is busy (or the server was
  /// built with async_depth 0) the request completes synchronously and the
  /// ticket returns inline — callers never block on slot availability.
  Ticket apply_async(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, nclients_, "ShmServer::apply_async");
    SyncStats& st = stats_[tid].s;
    AsyncSt& a = async_[tid];
    explore_point(ctx, "shm.async_issue");
    std::uint32_t slot = 0;
    for (std::uint32_t s = 1; s <= depth_; ++s) {
      if ((a.busy_mask & (1u << s)) == 0) {
        slot = s;
        break;
      }
    }
    if (slot == 0) {
      // No free slot: degrade to the synchronous channel (slot 0, which
      // async never occupies) and complete the ticket inline.
      ++st.async_issued;
      const Cycle issued = ctx.now();
      Ticket t{0, apply(ctx, fn, arg), 0};
      t.issued = issued;
      t.completed = ctx.now();
      return t;
    }
    obs::Span<Ctx> span(ctx, "shm.request");
    Channel& ch = chans_[chan_index(tid, slot)];
    const std::uint64_t seq = ctx.load(&ch.req_seq) + 1;
    ctx.store(&ch.arg, arg);
    ctx.store(&ch.fn, rt::to_word(fn));
    explore_point(ctx, "shm.publish");
    ctx.store(&ch.req_seq, seq);
    a.busy_mask |= 1u << slot;
    ++st.async_issued;
    Ticket t{seq, 0, slot};
    t.issued = ctx.now();
    return t;
  }

  /// Reaps one ticket: spins on its slot's resp_seq, then frees the slot.
  /// Must run on the issuing thread; tickets may be reaped in any order
  /// (each has its own cache line, so there is nothing to demux).
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const Tid tid = ctx.tid();
    check_tid(tid, nclients_, "ShmServer::wait");
    if (t.tag == 0) return t.value;  // completed inline
    explore_point(ctx, "shm.reap");
    Channel& ch = chans_[chan_index(tid, t.aux)];
    while (ctx.load(&ch.resp_seq) != t.tag) ctx.cpu_relax();
    async_[tid].busy_mask &= ~(1u << t.aux);
    t.completed = ctx.now();
    return ctx.load(&ch.ret);
  }

  /// Reaps every outstanding ticket of the calling thread, discarding the
  /// results.
  void wait_all(Ctx& ctx) {
    const Tid tid = ctx.tid();
    check_tid(tid, nclients_, "ShmServer::wait_all");
    AsyncSt& a = async_[tid];
    explore_point(ctx, "shm.reap");
    for (std::uint32_t s = 1; s <= depth_; ++s) {
      if ((a.busy_mask & (1u << s)) == 0) continue;
      Channel& ch = chans_[chan_index(tid, s)];
      const std::uint64_t seq = ctx.load(&ch.req_seq);
      while (ctx.load(&ch.resp_seq) != seq) ctx.cpu_relax();
      a.busy_mask &= ~(1u << s);
    }
  }

  /// Serves until a stop request is observed.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "ShmServer::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    std::uint32_t i = 0;
    bool found_any = false;
    for (;;) {
      Channel& ch = chans_[i];
      const std::uint32_t next = i + 1 == nchan_ ? 0 : i + 1;
      // Software-pipelined scan: start fetching the next channel line while
      // this one is inspected/served.
      ctx.prefetch(&chans_[next]);
      const std::uint64_t req = ctx.load(&ch.req_seq);
      if (req != ctx.load(&ch.resp_seq)) {
        const std::uint64_t fnw = ctx.load(&ch.fn);
        if (fnw == kStopWord) {
          ctx.store(&ch.resp_seq, req);  // ack so the stopper can proceed
          return;
        }
        // CS + response phase: the two server-side RMRs of Fig. 1 land here.
        obs::Span<Ctx> cs(ctx, "shm.cs");
        Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(fnw);
        const std::uint64_t arg = ctx.load(&ch.arg);
        const std::uint64_t ret = fn(ctx, obj_, arg);
        ctx.store(&ch.ret, ret);
        ctx.store(&ch.resp_seq, req);
        ++st.served;
        found_any = true;
      }
      i = next;
      if (i == 0) {
        explore_point(ctx, "shm.scan");
        // Completed a full scan. Back off briefly when it was empty: free
        // in the simulator, and natively it lets oversubscribed clients run
        // (the NativeCtx relax escalates to an OS yield).
        if (!found_any) {
          for (int b = 0; b < 8; ++b) ctx.cpu_relax();
        }
        found_any = false;
      }
    }
  }

  /// Stops the server through the caller's own channel (blocking until the
  /// server acknowledges).
  void request_stop(Ctx& ctx) {
    check_tid(ctx.tid(), nclients_, "ShmServer::request_stop");
    Channel& ch = chans_[chan_index(ctx.tid(), 0)];
    const std::uint64_t seq = ++my_seq_[ctx.tid()].v;
    ctx.store(&ch.fn, kStopWord);
    ctx.store(&ch.req_seq, seq);
    while (ctx.load(&ch.resp_seq) != seq) ctx.cpu_relax();
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "ShmServer::stats");
    return stats_[t].s;
  }

 private:
  // One cache line per client, as in RCL.
  struct alignas(rt::kCacheLine) Channel {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word req_seq{0};
    Word resp_seq{0};
  };
  static_assert(sizeof(Channel) == rt::kCacheLine);

  struct alignas(rt::kCacheLine) PaddedSeq {
    std::uint64_t v = 0;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  struct alignas(rt::kCacheLine) AsyncSt {
    std::uint32_t busy_mask = 0;  ///< bit s set: slot s issued, not reaped
  };

  /// busy_mask is a 32-bit set with slot 0 reserved for the sync channel.
  static constexpr std::uint32_t kMaxAsyncDepth = 31;

  std::uint32_t chan_index(Tid client, std::uint32_t slot) const {
    return client * (1 + depth_) + slot;
  }

  Tid server_;
  void* obj_;
  std::uint32_t nclients_;
  std::uint32_t depth_;
  std::uint32_t nchan_;  ///< nclients_ * (1 + depth_) channel lines
  std::unique_ptr<Channel[]> chans_;
  PaddedSeq my_seq_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
  AsyncSt async_[kMaxThreads];
};

}  // namespace hmps::sync

# Empty compiler generated dependencies file for sec53_scalar_claims.
# This may be replaced when dependencies are built.
